//! Shuffle stress test: an all-to-all transfer (the reduce phase of a
//! MapReduce-style job) across the fabric under each load-balancing
//! scheme, with and without RLB. Permutation traffic is shown as the
//! contention-free reference point.
//!
//! ```sh
//! cargo run --release --example shuffle_stress
//! ```

use rlb::core::RlbConfig;
use rlb::engine::{SimDuration, SimTime};
use rlb::lb::Scheme;
use rlb::metrics::{ms, pct, Table};
use rlb::net::{SimConfig, Simulation, TopoConfig};
use rlb::workloads::{all_to_all, permutation};
use rlb::engine::substream;

fn topo() -> TopoConfig {
    TopoConfig {
        n_leaves: 4,
        n_spines: 4,
        hosts_per_leaf: 4,
        ..TopoConfig::default()
    }
}

fn run(label: &str, flows: Vec<rlb::workloads::FlowSpec>, scheme: Scheme, rlb: Option<RlbConfig>, table: &mut Table) {
    let cfg = SimConfig {
        topo: topo(),
        scheme,
        rlb,
        hard_stop: SimTime::from_ms(200),
        ..SimConfig::default()
    };
    let res = Simulation::new(cfg, flows).run();
    let s = res.summary();
    table.row(vec![
        label.to_string(),
        format!("{}/{}", s.flows_completed, s.flows_total),
        ms(s.avg_fct_ms),
        ms(s.p99_fct_ms),
        pct(s.ooo_ratio),
        res.counters.pause_frames.to_string(),
    ]);
}

fn main() {
    let t = topo();
    let mut table = Table::new(vec!["case", "flows", "avg_ms", "p99_ms", "ooo", "pauses"]);

    // Contention-free permutation: the fabric's best case.
    let mut rng = substream(11, b"shuffle-example", 0);
    let perm = permutation(t.n_hosts(), t.hosts_per_leaf, 2_000_000, SimTime::ZERO, &mut rng);
    run("permutation, DRILL", perm.clone(), Scheme::Drill, None, &mut table);

    // Synchronized all-to-all: every host sends 500 KB to all 12 remote
    // hosts at t=0 — maximum fan-in everywhere.
    let shuffle = all_to_all(t.n_hosts(), t.hosts_per_leaf, 500_000, SimTime::ZERO, SimDuration::ZERO);
    for scheme in [Scheme::Presto, Scheme::LetFlow, Scheme::Hermes, Scheme::Drill, Scheme::Conga] {
        run(
            &format!("shuffle, {}", scheme.name()),
            shuffle.clone(),
            scheme,
            None,
            &mut table,
        );
        run(
            &format!("shuffle, {}+RLB", scheme.name()),
            shuffle.clone(),
            scheme,
            Some(RlbConfig::default()),
            &mut table,
        );
    }

    println!("All-to-all shuffle on a 4x4x4 fabric (16 hosts, 192 flows)\n");
    println!("{}", table.render());
}
