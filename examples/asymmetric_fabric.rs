//! Asymmetric fabric (§4.2): degrade 20% of leaf–spine links from 40 to
//! 10 Gbps and compare Hermes vs. Hermes+RLB across loads — asymmetry is
//! where congestion-aware rerouting (and its reordering risk) matters most.
//!
//! ```sh
//! cargo run --release --example asymmetric_fabric
//! ```

use rlb::core::RlbConfig;
use rlb::engine::SimTime;
use rlb::lb::Scheme;
use rlb::metrics::{ms, Table};
use rlb::net::scenario::{asymmetric_topo, steady_state, SteadyStateConfig};
use rlb::net::TopoConfig;
use rlb::workloads::Workload;

fn main() {
    let topo = asymmetric_topo(&TopoConfig::default(), 0.2, 99);
    println!(
        "Asymmetric 4x4 leaf-spine: {} of 16 leaf-spine links degraded to 10G: {:?}\n",
        topo.degraded_links.len(),
        topo.degraded_links
    );

    let mut table = Table::new(vec!["load", "scheme", "avg_fct_ms", "p99_fct_ms"]);
    for load in [0.3, 0.5, 0.7] {
        for (label, rlb) in [("Hermes", None), ("Hermes+RLB", Some(RlbConfig::default()))] {
            let cfg = SteadyStateConfig {
                topo: topo.clone(),
                workload: Workload::CacheFollower,
                load,
                horizon: SimTime::from_ms(5),
                seed: 77,
            };
            let res = steady_state(&cfg, Scheme::Hermes, rlb).run();
            let s = res.summary();
            table.row(vec![
                format!("{:.0}%", load * 100.0),
                label.to_string(),
                ms(s.avg_fct_ms),
                ms(s.p99_fct_ms),
            ]);
        }
    }
    println!("Cache Follower workload:\n\n{}", table.render());
}
