//! Quickstart: the paper in one table. Run the Fig. 2 scenario — parallel
//! paths, line-rate bursts plus a congested flow pausing five of them —
//! and compare DRILL with and without the RLB building block, measured on
//! the innocent background flows.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rlb::core::RlbConfig;
use rlb::engine::SimTime;
use rlb::lb::Scheme;
use rlb::metrics::{ms, pct, FctSummary, Table};
use rlb::net::scenario::{motivation, MotivationConfig, BACKGROUND_GROUP};

fn main() {
    let scenario = MotivationConfig {
        n_paths: 40,
        n_background: 24,
        background_load: 0.2,
        congested_flow_bytes: 30_000_000,
        horizon: SimTime::from_ms(3),
        ..MotivationConfig::default()
    };

    let mut table = Table::new(vec![
        "scheme",
        "bg_flows",
        "avg_fct_ms",
        "p99_fct_ms",
        "p99_ood_pkts",
        "ooo_packets",
        "pause_frames",
        "rlb_actions",
    ]);

    for (label, rlb) in [("DRILL", None), ("DRILL+RLB", Some(RlbConfig::default()))] {
        let res = motivation(&scenario, Scheme::Drill, rlb).run();
        // Measure the background flows f1..fn, as the paper does — the
        // traffic that is *not* responsible for the congestion.
        let bg: Vec<_> = res
            .records
            .iter()
            .zip(res.groups.iter())
            .filter(|(_, g)| **g == BACKGROUND_GROUP)
            .map(|(r, _)| r.clone())
            .collect();
        let s = FctSummary::from_records(&bg);
        assert_eq!(res.counters.buffer_drops, 0, "lossless fabric must not drop");
        table.row(vec![
            label.to_string(),
            format!("{}/{}", s.flows_completed, s.flows_total),
            ms(s.avg_fct_ms),
            ms(s.p99_fct_ms),
            format!("{:.0}", s.p99_ood),
            pct(s.ooo_ratio),
            res.counters.pause_frames.to_string(),
            (res.counters.reroutes + res.counters.recirculations).to_string(),
        ]);
    }

    println!("Fig. 2 scenario: 2 leaves x 40 spines, 40G links, PFC + DCQCN,");
    println!("64KB line-rate bursts + 30MB congested flow on 5 paths.\n");
    println!("{}", table.render());
    println!("RLB predicts the PFC pauses and steers the background flows away");
    println!("before they are blocked — cutting their out-of-order degree and");
    println!("tail FCT. Re-running reproduces these numbers bit-for-bit.");
}
