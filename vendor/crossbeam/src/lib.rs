//! Vendored, offline stub of the slice of `crossbeam` the workspace uses:
//! `crossbeam::thread::scope` with panic-as-`Err` semantics, implemented on
//! top of `std::thread::scope` (stable since Rust 1.63).

pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Mirror of `crossbeam::thread::Scope`; wraps the std scope so spawned
    /// closures receive a `&Scope` argument as in crossbeam's API.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            self.inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope handle; all spawned threads are joined before
    /// returning. A panicking child thread surfaces as `Err(payload)`,
    /// matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scope_joins_and_returns() {
            let mut data = [0u32; 8];
            let res = super::scope(|s| {
                for chunk in data.chunks_mut(2) {
                    s.spawn(move |_| {
                        for x in chunk.iter_mut() {
                            *x += 1;
                        }
                    });
                }
                42
            });
            assert_eq!(res.unwrap(), 42);
            assert!(data.iter().all(|&x| x == 1));
        }

        #[test]
        fn child_panic_becomes_err() {
            let res = super::scope(|s| {
                s.spawn(|_| panic!("child died"));
            });
            assert!(res.is_err());
        }

        #[test]
        fn nested_spawn_via_scope_arg() {
            let res = super::scope(|s| {
                s.spawn(|inner| {
                    inner.spawn(|_| 7u32).join().unwrap()
                })
                .join()
                .unwrap()
            });
            assert_eq!(res.unwrap(), 7);
        }
    }
}
