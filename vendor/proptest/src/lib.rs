//! Vendored, offline subset of the `proptest` API.
//!
//! The build environment has no network access, so this crate re-implements
//! the slice of proptest the workspace uses: the `proptest!` macro,
//! `Strategy` (ranges, tuples, `Just`, `prop_oneof!`, `prop_map`,
//! `collection::vec`), `any::<T>()`, `ProptestConfig`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, on purpose:
//! - **Deterministic**: each test function derives its RNG from a hash of
//!   its own name, so property tests are reproducible run-to-run — aligned
//!   with this repo's determinism policy (DESIGN.md, "Correctness tooling").
//! - **No shrinking**: on failure the panic message reports the case index;
//!   re-running reproduces the identical failing input.
//! - Default case count is 64 (upstream: 256) to keep `cargo test -q`
//!   fast; override per-block with `#![proptest_config(...)]` as usual.

pub mod test_runner {
    /// Rejection token produced by `prop_assume!` to skip a case.
    #[derive(Debug)]
    pub struct Reject;

    /// Subset of upstream's config; only `cases` is consulted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each property runs.
        pub cases: u32,
        /// Accepted for source compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
        /// Accepted for source compatibility; unused.
        pub max_local_rejects: u32,
        /// Accepted for source compatibility; unused.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_shrink_iters: 0,
                max_local_rejects: 65_536,
                max_global_rejects: 1_024,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases, ..Default::default() }
        }
    }

    /// The RNG driving case generation. Deterministic per test name.
    pub type TestRng = rand::rngs::SmallRng;

    /// Derive a reproducible RNG from a test's fully qualified name.
    pub fn rng_for_test(name: &str) -> TestRng {
        use rand::SeedableRng;
        // FNV-1a over the name: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream there is no `ValueTree`/shrinking machinery: a
    /// strategy is just a pure sampler from a deterministic RNG.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1_000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples");
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    /// Integer / float ranges are strategies, as upstream.
    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_inclusive_strategy!(u8, u16, u32, u64, usize);

    /// Tuples of strategies are strategies over tuples of values.
    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// `any::<T>()` — full-range arbitrary values for primitives.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub trait ArbitraryValue {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    use rand::RngCore;
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            use rand::RngCore;
            rng.next_u64() & 1 == 1
        }
    }

    impl ArbitraryValue for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.gen_range(-1.0e9..1.0e9)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Size specification for `vec`: an exact length or a half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.hi - self.size.lo <= 1 {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..self.size.hi)
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// The top-level property-test macro. Mirrors upstream syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_prop(x in 0u64..10, mut v in proptest::collection::vec(0u32..5, 1..9)) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($p:pat_param in $s:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::rng_for_test(concat!(module_path!(), "::", stringify!($name)));
                let __strategies = ($($s,)+);
                for __case in 0..__config.cases {
                    let ($($p,)+) = $crate::strategy::Strategy::sample(&__strategies, &mut __rng);
                    #[allow(clippy::redundant_closure_call)]
                    let __outcome: ::core::result::Result<(), $crate::test_runner::Reject> =
                        (move || {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    // Err means prop_assume! rejected the case; move on.
                    let _ = (__case, __outcome);
                }
            }
        )*
    };
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+);
    };
}

/// Uniform choice among alternative strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {{
        let __arms: ::std::vec::Vec<::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>> =
            ::std::vec![$(::std::boxed::Box::new($arm)),+];
        $crate::strategy::Union::new(__arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_respects_size(mut v in crate::collection::vec(0u32..100, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            v.sort_unstable();
            for w in v.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
        }

        #[test]
        fn tuples_and_maps(pair in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(pair < 20);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn oneof_and_just_cover_all_arms() {
        use crate::strategy::Strategy;
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::test_runner::rng_for_test("oneof_cover");
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = (0u64..1_000_000, 0u64..1_000_000);
        let mut r1 = crate::test_runner::rng_for_test("det");
        let mut r2 = crate::test_runner::rng_for_test("det");
        let a: Vec<_> = (0..32).map(|_| s.sample(&mut r1)).collect();
        let b: Vec<_> = (0..32).map(|_| s.sample(&mut r2)).collect();
        assert_eq!(a, b);
    }
}
