//! Vendored, offline subset of the `criterion` API.
//!
//! Implements just enough (`Criterion`, `benchmark_group`, `Bencher::iter`,
//! `black_box`, `criterion_group!`, `criterion_main!`) for the workspace's
//! benches to compile and run without network access. Measurement is a
//! simple calibrated wall-clock loop printing ns/iter — adequate for
//! relative comparisons, with none of upstream's statistical machinery.
//!
//! Two upstream CLI behaviors are honoured (everything else is ignored):
//! positional args are substring filters on the benchmark id, and
//! `--test` runs each selected routine once to check it executes,
//! without timing it — what CI's smoke job relies on.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

struct Cli {
    filters: Vec<String>,
    test_mode: bool,
}

fn cli() -> &'static Cli {
    static CLI: OnceLock<Cli> = OnceLock::new();
    CLI.get_or_init(|| {
        let mut filters = Vec::new();
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') {
                filters.push(arg);
            }
        }
        Cli { filters, test_mode }
    })
}

/// Opaque value barrier — defeats constant folding across the call.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let cli = cli();
        if !cli.filters.is_empty() && !cli.filters.iter().any(|p| id.contains(p)) {
            return self;
        }
        if cli.test_mode {
            let mut b = Bencher {
                budget: Duration::ZERO,
                warm_up: Duration::ZERO,
                samples: 0,
                best_ns: f64::INFINITY,
            };
            f(&mut b);
            println!("test bench {id} ... ok");
            return self;
        }
        let mut b = Bencher {
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            samples: self.sample_size,
            best_ns: f64::INFINITY,
        };
        f(&mut b);
        if b.best_ns.is_finite() {
            println!("bench {id:<50} {:>14.1} ns/iter", b.best_ns);
        } else {
            println!("bench {id:<50} (no measurement)");
        }
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.to_string() }
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.c.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.c.measurement_time = d;
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    samples: usize,
    best_ns: f64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // --test: execute once to prove the routine runs; no timing.
        if self.samples == 0 {
            black_box(routine());
            return;
        }
        // Warm-up + calibration: find an iteration count that runs long
        // enough to swamp timer resolution.
        let warm_deadline = Instant::now() + self.warm_up;
        let mut iters_per_sample = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || Instant::now() >= warm_deadline {
                break;
            }
            iters_per_sample = iters_per_sample.saturating_mul(4);
        }
        let deadline = Instant::now() + self.budget;
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            if ns < best {
                best = ns;
            }
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_ns = best;
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
