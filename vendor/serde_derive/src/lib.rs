//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! serde stub. The workspace derives these traits on config/record structs
//! for forward compatibility, but nothing in-tree performs serialization
//! (there is no serde_json in the build), so emitting no impl is sound: any
//! future code that actually *bounds* on the traits will fail to compile,
//! loudly, instead of silently misbehaving.
//!
//! `attributes(serde)` registers the `#[serde(...)]` helper attribute so
//! field annotations like `#[serde(skip)]` keep parsing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
