//! Vendored, offline subset of the `rand` 0.8 API.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace ships this minimal, deterministic re-implementation of the
//! slice of `rand` the simulator actually uses: `SmallRng` (xoshiro256++),
//! `SeedableRng::seed_from_u64` (SplitMix64 expansion, matching upstream's
//! seeding recipe), `Rng::{gen, gen_range, gen_bool, fill}` and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! Exact draw sequences are NOT guaranteed to match crates.io `rand`; the
//! repo's own tests only rely on determinism (same seed -> same stream),
//! which this implementation provides.
//!
//! Deliberately omitted: `thread_rng`, `from_entropy`, `random()` — the
//! determinism policy (see DESIGN.md, "Correctness tooling") forbids
//! ambient entropy in simulator code, and `cargo xtask lint` flags any use.

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into full seed material via SplitMix64 (the same
    /// recipe upstream `rand` uses for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly at random from an RNG (subset of upstream's
/// `Standard` distribution).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be drawn uniformly from a `lo..hi` interval. Mirrors
/// upstream's `SampleUniform` so that a single generic `SampleRange` impl
/// exists per range shape — this matters for integer-literal inference
/// (`rng.gen_range(0..100) >= some_u32` must infer `u32`, not default to
/// `i32` the way a family of per-type impls would force).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`. `hi_inclusive` widens to `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, hi_inclusive: bool, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, hi_inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u128 + hi_inclusive as u128;
                if span == 0 || span > u64::MAX as u128 {
                    // Full-width inclusive range: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                // Widening multiply keeps bias below 2^-64 for all spans the
                // simulator uses; good enough for a queueing workload.
                let off = ((rng.next_u64() as u128 * span) >> 64) as $u;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(lo: Self, hi: Self, _hi_inclusive: bool, rng: &mut R) -> Self {
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        T::sample_between(start, end, true, rng)
    }
}

/// High-level convenience methods, auto-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same generator family upstream `SmallRng` uses on
    /// 64-bit targets. Fast, small state, more than adequate statistical
    /// quality for queueing simulation.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Subset of upstream's `SliceRandom`: Fisher–Yates shuffle and uniform
    /// element choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod distributions {
    /// Marker kept for API compatibility; `StandardSample` does the work.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let f: f64 = rng.gen_range(0.5..2.5);
            assert!((0.5..2.5).contains(&f));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_rate_sane() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "p=0.25 gave {hits}/100000");
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let orig: Vec<u32> = (0..50).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        a.shuffle(&mut SmallRng::seed_from_u64(9));
        b.shuffle(&mut SmallRng::seed_from_u64(9));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }

    #[test]
    fn choose_uniformish() {
        let mut rng = SmallRng::seed_from_u64(4);
        let items = [1, 2, 3, 4];
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[*items.choose(&mut rng).unwrap() as usize - 1] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
