//! Vendored, offline stub of `serde`: the two marker traits plus no-op
//! derive macros. See `vendor/serde_derive` for why emitting no impls is
//! sound for this workspace (nothing in-tree serializes; derives exist for
//! forward compatibility of config/record types).

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
