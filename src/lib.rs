//! # rlb — Reordering-Robust Load Balancing in Lossless Datacenter Networks
//!
//! A from-scratch Rust reproduction of **RLB** (Hu, He, Wang, Luo, Huang —
//! ICPP 2023): a building block that makes existing datacenter
//! load-balancing schemes robust to the packet reordering caused by
//! Priority-based Flow Control (PFC) in lossless Ethernet fabrics.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`engine`] | `rlb-engine` | picosecond clock, deterministic event queue |
//! | [`metrics`] | `rlb-metrics` | FCT/OOD statistics, tables |
//! | [`workloads`] | `rlb-workloads` | flow-size CDFs, Poisson/incast/burst traffic |
//! | [`transport`] | `rlb-transport` | go-back-N and DCQCN state machines |
//! | [`lb`] | `rlb-lb` | ECMP, Presto, LetFlow, Hermes, DRILL |
//! | [`core`] | `rlb-core` | **RLB itself**: PFC prediction, CNM warnings, Algorithm 1 |
//! | [`net`] | `rlb-net` | the packet-level lossless-fabric simulator |
//!
//! ## Quickstart
//!
//! ```
//! use rlb::net::scenario::{steady_state, SteadyStateConfig};
//! use rlb::lb::Scheme;
//! use rlb::core::RlbConfig;
//! use rlb::engine::SimTime;
//!
//! // Web Search at 60% load on a 4x4 leaf-spine fabric, DRILL+RLB.
//! let mut cfg = SteadyStateConfig::default();
//! cfg.horizon = SimTime::from_us(300); // tiny horizon for the doctest
//! let result = steady_state(&cfg, Scheme::Drill, Some(RlbConfig::default())).run();
//! println!("avg FCT = {:.3} ms", result.summary().avg_fct_ms);
//! assert_eq!(result.counters.buffer_drops, 0);
//! ```

pub use rlb_core as core;
pub use rlb_engine as engine;
pub use rlb_lb as lb;
pub use rlb_metrics as metrics;
pub use rlb_net as net;
pub use rlb_transport as transport;
pub use rlb_workloads as workloads;
