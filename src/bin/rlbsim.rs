//! `rlbsim` — run a custom lossless-DCN simulation from the command line.
//!
//! ```sh
//! cargo run --release --bin rlbsim -- \
//!     --scheme drill --rlb --workload websearch --load 0.6 \
//!     --leaves 4 --spines 4 --hosts 8 --horizon-ms 10 --seed 1
//! ```
//!
//! Flags (all optional):
//!
//! ```text
//!   --scheme <ecmp|presto|letflow|hermes|drill|conga>   (default drill)
//!   --rlb                       enable the RLB building block
//!   --no-recirculation          RLB without packet recirculation (Fig. 9)
//!   --no-pfc                    disable PFC (lossy fabric)
//!   --workload <webserver|cachefollower|websearch|datamining>
//!   --load <0..1>               offered core load        (default 0.6)
//!   --leaves/--spines/--hosts   fabric shape             (default 4/4/8)
//!   --asymmetric <frac>         degrade this fraction of links to 10G
//!   --incast <degree>           run the incast scenario instead
//!   --horizon-ms <ms>           traffic injection window (default 10)
//!   --seed <n>                  RNG seed                 (default 1)
//!   --monitor                   collect and print a fabric time series
//!   --cdf                       print the FCT CDF
//! ```

use rlb::core::RlbConfig;
use rlb::engine::{SimDuration, SimTime};
use rlb::lb::Scheme;
use rlb::metrics::{ms, pct, Table};
use rlb::net::scenario::{
    asymmetric_topo, incast_scenario, steady_state, IncastScenarioConfig, SteadyStateConfig,
};
use rlb::net::{MonitorConfig, TopoConfig};
use rlb::workloads::Workload;

struct Args(Vec<String>);

impl Args {
    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(|s| s.as_str())
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        match self.value(name) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("bad value for {name}: {v} ({e:?})")),
            None => default,
        }
    }
}

fn parse_scheme(s: &str) -> Scheme {
    match s.to_ascii_lowercase().as_str() {
        "ecmp" => Scheme::Ecmp,
        "presto" => Scheme::Presto,
        "letflow" => Scheme::LetFlow,
        "hermes" => Scheme::Hermes,
        "drill" => Scheme::Drill,
        "conga" => Scheme::Conga,
        other => panic!("unknown scheme: {other}"),
    }
}

fn parse_workload(s: &str) -> Workload {
    match s.to_ascii_lowercase().as_str() {
        "webserver" | "web-server" => Workload::WebServer,
        "cachefollower" | "cache-follower" => Workload::CacheFollower,
        "websearch" | "web-search" => Workload::WebSearch,
        "datamining" | "data-mining" => Workload::DataMining,
        other => panic!("unknown workload: {other}"),
    }
}

fn main() {
    let args = Args(std::env::args().skip(1).collect());
    let scheme = parse_scheme(args.value("--scheme").unwrap_or("drill"));
    let workload = parse_workload(args.value("--workload").unwrap_or("websearch"));
    let load: f64 = args.parse("--load", 0.6);
    let horizon_ms: u64 = args.parse("--horizon-ms", 10);
    let seed: u64 = args.parse("--seed", 1);

    let mut topo = TopoConfig {
        n_leaves: args.parse("--leaves", 4),
        n_spines: args.parse("--spines", 4),
        hosts_per_leaf: args.parse("--hosts", 8),
        ..TopoConfig::default()
    };
    if let Some(frac) = args.value("--asymmetric") {
        let frac: f64 = frac.parse().expect("bad --asymmetric fraction");
        topo = asymmetric_topo(&topo, frac, seed ^ 0xA5);
    }

    let rlb = args.flag("--rlb").then(|| RlbConfig {
        enable_recirculation: !args.flag("--no-recirculation"),
        ..RlbConfig::default()
    });

    let mut scenario = if let Some(degree) = args.value("--incast") {
        incast_scenario(
            &IncastScenarioConfig {
                topo: topo.clone(),
                degree: degree.parse().expect("bad --incast degree"),
                requests: (horizon_ms as u32).max(1),
                request_interval: SimDuration::from_ms(1),
                background_load: load.min(0.4),
                seed,
                ..IncastScenarioConfig::default()
            },
            scheme,
            rlb,
        )
    } else {
        steady_state(
            &SteadyStateConfig {
                topo: topo.clone(),
                workload,
                load,
                horizon: SimTime::from_ms(horizon_ms),
                seed,
            },
            scheme,
            rlb,
        )
    };
    if args.flag("--no-pfc") {
        scenario.cfg.switch.pfc_enabled = false;
    }
    if args.flag("--monitor") {
        scenario.cfg.monitor = Some(MonitorConfig::default());
    }

    let label = scenario.cfg.label();
    println!(
        "fabric {}x{}x{} | {} | {} @ {:.0}% | seed {} | horizon {} ms | PFC {}",
        topo.n_leaves,
        topo.n_spines,
        topo.hosts_per_leaf,
        label,
        workload.name(),
        load * 100.0,
        seed,
        horizon_ms,
        if args.flag("--no-pfc") { "off" } else { "on" },
    );

    // lint:allow(wall-clock) -- CLI progress timing only, never fed to the sim
    let t0 = std::time::Instant::now();
    let res = scenario.run();
    let s = res.summary();

    let mut t = Table::new(vec!["metric", "value"]);
    t.row(vec!["flows completed".to_string(), format!("{}/{}", s.flows_completed, s.flows_total)]);
    t.row(vec!["avg FCT (ms)".to_string(), ms(s.avg_fct_ms)]);
    t.row(vec!["p50 FCT (ms)".to_string(), ms(s.p50_fct_ms)]);
    t.row(vec!["p99 FCT (ms)".to_string(), ms(s.p99_fct_ms)]);
    t.row(vec!["out-of-order packets".to_string(), pct(s.ooo_ratio)]);
    {
        let base_rtt_ps = 2 * topo.base_one_way_ps(1048);
        let overhead = 1048.0 / 1000.0;
        let (sd_avg, sd_p99) = rlb::metrics::slowdown_summary(
            &res.records,
            topo.host_link_rate_bps as f64,
            base_rtt_ps,
            overhead,
        );
        t.row(vec!["avg FCT slowdown".to_string(), format!("{sd_avg:.2}x")]);
        t.row(vec!["p99 FCT slowdown".to_string(), format!("{sd_p99:.2}x")]);
    }
    t.row(vec!["p99 OOD (pkts)".to_string(), format!("{:.0}", s.p99_ood)]);
    t.row(vec!["NAKs".to_string(), s.total_naks.to_string()]);
    t.row(vec!["PFC PAUSE frames".to_string(), res.counters.pause_frames.to_string()]);
    t.row(vec!["CNM warnings".to_string(), res.counters.cnm_generated.to_string()]);
    t.row(vec!["RLB reroutes".to_string(), res.counters.reroutes.to_string()]);
    t.row(vec!["RLB recirculations".to_string(), res.counters.recirculations.to_string()]);
    t.row(vec!["buffer drops".to_string(), res.counters.buffer_drops.to_string()]);
    t.row(vec!["events processed".to_string(), res.events_processed.to_string()]);
    println!("\n{}", t.render());

    let icts = res.group_completion_ms();
    if !icts.is_empty() {
        let times: Vec<f64> = icts.iter().map(|(_, v)| *v).collect();
        let avg = rlb::metrics::mean(&times);
        println!("incast completion time (avg over {} requests): {:.3} ms", icts.len(), avg);
    }

    if args.flag("--cdf") {
        println!("\n# FCT CDF (ms, cumulative probability)");
        for (x, p) in rlb::metrics::downsample_cdf(&rlb::metrics::fct_cdf(&res.records), 20) {
            println!("{x:.4} {p:.3}");
        }
    }
    if args.flag("--monitor") {
        println!("\n{}", res.timeseries.render());
    }
    eprintln!("wall time: {:?}", t0.elapsed());
}
