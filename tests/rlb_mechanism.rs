//! Integration tests for RLB's mechanism chain and its headline effect:
//! prediction → CNM → upstream warning → reroute/recirculate → less
//! reordering for the innocent traffic.

use rlb::core::RlbConfig;
use rlb::engine::SimTime;
use rlb::lb::Scheme;
use rlb::metrics::FctSummary;
use rlb::net::scenario::{motivation, MotivationConfig, BACKGROUND_GROUP};
use rlb::net::RunResult;

fn small_motivation(seed: u64) -> MotivationConfig {
    MotivationConfig {
        n_paths: 12,
        n_background: 12,
        n_burst_senders: 2,
        n_burst_senders_dst: 2,
        flows_per_burst: 40,
        bursts: 3,
        affected_paths: 4,
        congested_flow_bytes: 20_000_000,
        background_load: 0.25,
        horizon: SimTime::from_ms(2),
        seed,
    }
}

fn background_summary(res: &RunResult) -> FctSummary {
    let bg: Vec<_> = res
        .records
        .iter()
        .zip(res.groups.iter())
        .filter(|(_, g)| **g == BACKGROUND_GROUP)
        .map(|(r, _)| r.clone())
        .collect();
    assert!(!bg.is_empty());
    FctSummary::from_records(&bg)
}

/// The full warning pipeline fires in the motivation scenario: the victim
/// leaf predicts, CNMs relay through the spines, the source leaf records
/// warnings and RLB changes decisions.
#[test]
fn warning_pipeline_fires_end_to_end() {
    let res = motivation(&small_motivation(1), Scheme::Drill, Some(RlbConfig::default())).run();
    assert!(res.counters.pause_frames > 0, "bursts must trigger PFC");
    assert!(res.counters.cnm_generated > 0, "predictor must warn");
    assert!(res.counters.cnm_relayed > 0, "spines must relay CNMs");
    assert!(
        res.counters.reroutes + res.counters.recirculations > 0,
        "RLB must act on warnings"
    );
}

/// The paper's headline: RLB cuts the background flows' out-of-order
/// degree and tail FCT in the PFC-storm scenario. Averaged over seeds to
/// be robust against single-run noise.
#[test]
fn rlb_reduces_background_ood_and_tail_fct() {
    let mut vanilla_ood = 0.0;
    let mut rlb_ood = 0.0;
    let mut vanilla_p99 = 0.0;
    let mut rlb_p99 = 0.0;
    let seeds = [1u64, 2, 3];
    for &seed in &seeds {
        let mc = small_motivation(seed);
        let v = background_summary(&motivation(&mc, Scheme::Drill, None).run());
        let r = background_summary(
            &motivation(&mc, Scheme::Drill, Some(RlbConfig::default())).run(),
        );
        vanilla_ood += v.p99_ood;
        rlb_ood += r.p99_ood;
        vanilla_p99 += v.p99_fct_ms;
        rlb_p99 += r.p99_fct_ms;
    }
    let n = seeds.len() as f64;
    assert!(
        rlb_ood / n < vanilla_ood / n,
        "RLB must cut p99 OOD: vanilla {:.0} vs RLB {:.0}",
        vanilla_ood / n,
        rlb_ood / n
    );
    assert!(
        rlb_p99 < vanilla_p99 * 1.02,
        "RLB must not inflate tail FCT: vanilla {:.3} vs RLB {:.3}",
        vanilla_p99 / n,
        rlb_p99 / n
    );
}

/// PFC is the reordering culprit: disabling it in the same scenario slashes
/// the background OOD (Fig. 3's contrast), for every scheme.
#[test]
fn pfc_inflates_out_of_order_degree() {
    for scheme in [Scheme::Presto, Scheme::Drill] {
        let mc = small_motivation(7);
        let mut on = motivation(&mc, scheme, None);
        on.cfg.switch.pfc_enabled = true;
        let mut off = motivation(&mc, scheme, None);
        off.cfg.switch.pfc_enabled = false;
        let s_on = background_summary(&on.run());
        let s_off = background_summary(&off.run());
        assert!(
            s_on.p99_ood > s_off.p99_ood,
            "{scheme:?}: PFC-on OOD {:.0} must exceed PFC-off {:.0}",
            s_on.p99_ood,
            s_off.p99_ood
        );
    }
}

/// The Fig. 4(a) trend: more affected paths ⇒ more background reordering.
#[test]
fn reordering_grows_with_affected_paths() {
    let ooo_at = |k: u32| {
        let mut mc = small_motivation(11);
        mc.affected_paths = k;
        background_summary(&motivation(&mc, Scheme::Drill, None).run()).ooo_ratio
    };
    let few = ooo_at(2);
    let many = ooo_at(10);
    assert!(
        many > few,
        "OOO must grow with affected paths: {few:.4} (2 paths) vs {many:.4} (10 paths)"
    );
}

/// Recirculated packets never exceed the configured budget per packet and
/// the ablation flag really disables recirculation.
#[test]
fn recirculation_budget_and_ablation() {
    let mc = small_motivation(13);
    let no_recirc = RlbConfig {
        enable_recirculation: false,
        ..RlbConfig::default()
    };
    let res = motivation(&mc, Scheme::Presto, Some(no_recirc)).run();
    assert_eq!(res.counters.recirculations, 0, "ablation must disable recirculation");

    let res2 = motivation(&mc, Scheme::Presto, Some(RlbConfig::default())).run();
    // Budget: total recirculations bounded by packets x max_recirculations.
    let sent: u64 = res2.records.iter().map(|r| r.packets_sent).sum();
    assert!(res2.counters.recirculations <= sent * RlbConfig::default().max_recirculations as u64);
}

/// Path-restricted flows (the Fig. 4a control) never leave their allowed
/// spines, verified packet-by-packet with the flow tracer — even under
/// DRILL's per-packet spraying and with RLB rerouting enabled.
#[test]
fn path_limit_confines_flows_to_allowed_spines() {
    use rlb::net::{SimConfig, Simulation, TopoConfig, TraceEvent};
    use rlb::workloads::FlowSpec;
    let cfg = SimConfig {
        topo: TopoConfig {
            n_leaves: 2,
            n_spines: 8,
            hosts_per_leaf: 4,
            ..TopoConfig::default()
        },
        scheme: Scheme::Drill,
        rlb: Some(RlbConfig::default()),
        hard_stop: SimTime::from_ms(100),
        trace_flows: vec![0],
        ..SimConfig::default()
    };
    let flows = vec![
        FlowSpec::new(SimTime::ZERO, 0, 4, 500_000).with_path_limit(3),
        // Competing traffic to create congestion and RLB activity.
        FlowSpec::new(SimTime::ZERO, 1, 4, 500_000),
        FlowSpec::new(SimTime::ZERO, 2, 4, 500_000),
    ];
    let res = Simulation::new(cfg, flows).run();
    assert!(res.records.iter().all(|r| r.completed()));
    let entries = res.traces.get(0).expect("flow 0 traced");
    let mut routed = 0;
    for e in entries {
        if let TraceEvent::Routed { path } = e.event {
            assert!(path < 3, "restricted flow escaped onto spine {path}");
            routed += 1;
        }
    }
    assert!(routed >= 500, "flow 0's packets must be routed: {routed}");
}

/// RLB leaves an uncongested fabric alone: without pauses there are no
/// warnings and the enhanced scheme behaves exactly like the vanilla one.
#[test]
fn rlb_is_transparent_without_congestion() {
    use rlb::net::{SimConfig, Simulation, TopoConfig};
    use rlb::workloads::FlowSpec;
    let mk = |rlb: Option<RlbConfig>| {
        let cfg = SimConfig {
            topo: TopoConfig {
                n_leaves: 2,
                n_spines: 4,
                hosts_per_leaf: 2,
                ..TopoConfig::default()
            },
            scheme: Scheme::Presto,
            rlb,
            hard_stop: SimTime::from_ms(50),
            ..SimConfig::default()
        };
        // One gentle flow: no congestion anywhere.
        let flows = vec![FlowSpec::new(SimTime::ZERO, 0, 2, 200_000)];
        Simulation::new(cfg, flows).run()
    };
    let vanilla = mk(None);
    let enhanced = mk(Some(RlbConfig::default()));
    assert_eq!(enhanced.counters.cnm_generated, 0);
    assert_eq!(enhanced.counters.recirculations, 0);
    assert_eq!(
        vanilla.records[0].finish_ps, enhanced.records[0].finish_ps,
        "identical FCT when RLB never intervenes"
    );
}
