//! Quantitative physics checks: the simulator's outputs must match
//! hand-computed serialization, propagation, and bandwidth-sharing numbers,
//! not merely "look plausible".

use rlb::engine::SimTime;
use rlb::lb::Scheme;
use rlb::net::{MonitorConfig, SimConfig, Simulation, TopoConfig};
use rlb::workloads::FlowSpec;

fn cfg_2x2() -> SimConfig {
    SimConfig {
        topo: TopoConfig {
            n_leaves: 2,
            n_spines: 2,
            hosts_per_leaf: 2,
            ..TopoConfig::default()
        },
        scheme: Scheme::Ecmp,
        hard_stop: SimTime::from_ms(200),
        ..SimConfig::default()
    }
}

/// One 1-byte-payload packet host→host across the core: FCT must equal the
/// hand-computed store-and-forward latency plus the ACK's return trip,
/// within one packet's serialization of slack.
#[test]
fn single_packet_latency_matches_hand_calculation() {
    let flows = vec![FlowSpec::new(SimTime::ZERO, 0, 2, 1)];
    let res = Simulation::new(cfg_2x2(), flows).run();
    let fct_ps = res.records[0].fct_ps().unwrap();
    // Data: wire = 1 + 48 hdr = 49 B → 9.8 ns per hop at 40G; 4 hops of
    // (ser + 2 µs prop). ACK: 64 B → 12.8 ns per hop; 4 hops back.
    let data_one_way = 4 * (9_800 + 2_000_000);
    let ack_back = 4 * (12_800 + 2_000_000);
    let expected = data_one_way + ack_back;
    let slack = 300_000; // generous sub-µs slack for event granularity
    assert!(
        (fct_ps as i64 - expected as i64).unsigned_abs() < slack,
        "fct {fct_ps} ps vs expected {expected} ps"
    );
}

/// A 4 MB flow on an uncongested path must achieve ≈ line rate: FCT within
/// 15% of size/bandwidth + base latency.
#[test]
fn solo_flow_achieves_line_rate() {
    let flows = vec![FlowSpec::new(SimTime::ZERO, 0, 2, 4_000_000)];
    let res = Simulation::new(cfg_2x2(), flows).run();
    let fct_s = res.records[0].fct_ps().unwrap() as f64 / 1e12;
    // 4 MB + 5% header overhead at 40 Gbps ≈ 0.84 ms.
    let ideal = (4_000_000.0 * 1.048 * 8.0) / 40e9;
    assert!(fct_s > ideal * 0.98, "faster than line rate? {fct_s} vs {ideal}");
    assert!(fct_s < ideal * 1.15, "too slow for a solo flow: {fct_s} vs {ideal}");
}

/// The same flow over a degraded (10G) path takes ≈ 4× longer.
#[test]
fn degraded_link_quarters_throughput() {
    let mut cfg = cfg_2x2();
    // Degrade every uplink so the flow cannot escape the 10G paths.
    cfg.topo.degraded_links = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
    let flows = vec![FlowSpec::new(SimTime::ZERO, 0, 2, 4_000_000)];
    let res = Simulation::new(cfg, flows).run();
    let fct_s = res.records[0].fct_ps().unwrap() as f64 / 1e12;
    let ideal_10g = (4_000_000.0 * 1.048 * 8.0) / 10e9;
    // DCQCN leaves headroom on a 4:1 rate mismatch (persistent marking at
    // the bottleneck keeps cutting the rate, recovery is slow), so demand
    // only that the 10G link binds: slower than 10G line rate, far slower
    // than 40G, but within 3x of the 10G ideal.
    assert!(fct_s > ideal_10g * 0.98, "beat the 10G bottleneck?! {fct_s} vs {ideal_10g}");
    assert!(fct_s < ideal_10g * 3.0, "pathologically slow on 10G: {fct_s} vs {ideal_10g}");
}

/// Two equal flows into one host share its 40G link ≈ fairly under DCQCN:
/// both finish within 2.6× the solo ideal (perfect sharing would be 2×),
/// and neither is starved.
#[test]
fn two_flows_share_the_bottleneck() {
    let flows = vec![
        FlowSpec::new(SimTime::ZERO, 0, 2, 4_000_000),
        FlowSpec::new(SimTime::ZERO, 1, 2, 4_000_000),
    ];
    let res = Simulation::new(cfg_2x2(), flows).run();
    let ideal_solo = (4_000_000.0 * 1.048 * 8.0) / 40e9;
    // Perfect sharing would be 2x the solo ideal; DCQCN with its default
    // 40G parameters (Kmin=5KB, Pmax=1%) keeps cutting on the persistent
    // standing queue and realises ~45% utilisation here, so accept 5x.
    let mut fcts = Vec::new();
    for r in &res.records {
        let fct_s = r.fct_ps().unwrap() as f64 / 1e12;
        assert!(fct_s > ideal_solo * 1.5, "sharing must slow both: {fct_s}");
        assert!(fct_s < ideal_solo * 5.0, "excessive slowdown: {fct_s}");
        fcts.push(fct_s);
    }
    // Fairness: neither flow finishes more than 60% later than the other.
    let (a, b) = (fcts[0], fcts[1]);
    assert!(a.max(b) / a.min(b) < 1.6, "unfair split: {a} vs {b}");
}

/// Sustained 2:1 overload of a host link must pause the sending hosts'
/// NICs (PFC backpressure reaches the edge) — visible in the monitor's
/// time series.
#[test]
fn pfc_backpressure_reaches_the_hosts() {
    let mut cfg = cfg_2x2();
    cfg.monitor = Some(MonitorConfig::default());
    // Hosts 0 and 1 are on the same leaf as their victim... use remote
    // senders through the core plus a local one to fill the egress.
    let flows = vec![
        FlowSpec::new(SimTime::ZERO, 2, 0, 6_000_000),
        FlowSpec::new(SimTime::ZERO, 3, 0, 6_000_000),
        FlowSpec::new(SimTime::ZERO, 1, 0, 6_000_000),
    ];
    let res = Simulation::new(cfg, flows).run();
    assert!(res.counters.pause_frames > 0, "3:1 overload must pause");
    let saw_paused_entity = res
        .timeseries
        .samples
        .iter()
        .any(|s| s.paused_hosts > 0 || s.paused_ports > 0);
    assert!(saw_paused_entity, "monitor must observe the pausing");
    assert!(res.timeseries.paused_fraction() > 0.0);
    assert!(res.records.iter().all(|r| r.completed()));
}

/// Paused-time accounting: summed paused port-time can never exceed
/// (#switch ports + #hosts) × simulated time.
#[test]
fn paused_time_is_bounded_by_wall_clock() {
    let flows: Vec<FlowSpec> = (0..4u32)
        .map(|s| FlowSpec::new(SimTime::ZERO, s % 2 + 2, 0, 3_000_000))
        .filter(|f| f.src_host != f.dst_host)
        .collect();
    let res = Simulation::new(cfg_2x2(), flows).run();
    let ports = 2 * 4 + 2 * 2 + 4; // 2 leaves x 4 ports + 2 spines x 2 + 4 hosts
    let bound = ports as u64 * res.end_time.as_ps();
    assert!(res.counters.paused_port_time_ps <= bound);
}

/// ECMP pins each flow to one path: even under congestion, a flow's
/// packets can never reorder (order is preserved per path end-to-end).
#[test]
fn ecmp_never_reorders() {
    let flows: Vec<FlowSpec> = (0..6u32)
        .map(|i| FlowSpec::new(SimTime(i as u64 * 1_000), i % 2, 2 + (i % 2), 2_000_000))
        .collect();
    let res = Simulation::new(cfg_2x2(), flows).run();
    let s = res.summary();
    assert_eq!(s.total_ooo_packets, 0, "per-flow single path cannot reorder");
    assert_eq!(s.total_naks, 0);
}
