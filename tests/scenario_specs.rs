//! Every committed scenario spec under `specs/` must parse, round-trip
//! through the canonical writer, and build into a runnable scenario.
//!
//! CI runs this test as the "spec files stay valid" gate: if a grammar
//! change breaks an on-disk example, it fails here with the parser's
//! caret-frame diagnostic in the assertion message.

use rlb::net::ScenarioSpec;

fn committed_specs() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("specs/ directory exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "toml") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable spec file");
            out.push((name, text));
        }
    }
    out.sort();
    out
}

#[test]
fn every_committed_spec_parses_and_builds() {
    let specs = committed_specs();
    assert!(
        !specs.is_empty(),
        "specs/ must hold at least one example spec"
    );
    for (name, text) in &specs {
        let spec = ScenarioSpec::parse(text)
            .unwrap_or_else(|e| panic!("specs/{name} failed to parse:\n{e}"));
        let scenario = spec
            .build()
            .unwrap_or_else(|e| panic!("specs/{name} failed to build: {e}"));
        assert!(
            !scenario.flows.is_empty(),
            "specs/{name} generated no flows"
        );
    }
}

#[test]
fn every_committed_spec_round_trips() {
    for (name, text) in committed_specs() {
        let spec = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("specs/{name} failed to parse:\n{e}"));
        let canonical = spec.to_spec_text();
        let back = ScenarioSpec::parse(&canonical)
            .unwrap_or_else(|e| panic!("specs/{name} canonical text failed to re-parse:\n{e}"));
        assert_eq!(spec, back, "specs/{name} does not round-trip");
        assert_eq!(
            canonical,
            back.to_spec_text(),
            "specs/{name} canonical text is not a fixed point"
        );
    }
}

#[test]
fn incast_spec_generates_the_burst_train() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/incast_storm.toml");
    let text = std::fs::read_to_string(path).expect("specs/incast_storm.toml exists");
    let spec = ScenarioSpec::parse(&text).expect("incast_storm parses");
    let ic = spec.incast.expect("incast_storm declares an [incast] section");
    assert_eq!((ic.degree, ic.requests), (15, 8));
    let scenario = spec.build().expect("incast_storm builds");
    // 8 requests × 15 responders land on top of the background mix.
    assert!(
        scenario.flows.len() >= (ic.degree * ic.requests) as usize,
        "expected at least {} flows, got {}",
        ic.degree * ic.requests,
        scenario.flows.len()
    );
    // Every request's responses converge on a single client host.
    let per_responder = ic.total_response_bytes / ic.degree as u64;
    let first_burst: Vec<_> = scenario
        .flows
        .iter()
        .filter(|f| f.start.as_ps() == 0 && f.size_bytes == per_responder)
        .collect();
    assert_eq!(first_burst.len(), ic.degree as usize);
    let client = first_burst[0].dst_host;
    assert!(first_burst.iter().all(|f| f.dst_host == client));
}

#[test]
fn faulted_specs_apply_their_timelines() {
    // The worked example from EXPERIMENTS.md: two staggered outages with
    // recovery — four fault events must actually fire.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/link_outage.toml");
    let text = std::fs::read_to_string(path).expect("specs/link_outage.toml exists");
    let spec = ScenarioSpec::parse(&text).expect("link_outage parses");
    let res = spec.build().expect("link_outage builds").run();
    assert_eq!(res.counters.faults_applied, 4, "2 downs + 2 recoveries");
    assert_eq!(res.counters.buffer_drops, 0, "lossless even under faults");
}
