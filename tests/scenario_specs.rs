//! Every committed scenario spec under `specs/` must parse, round-trip
//! through the canonical writer, and build into a runnable scenario.
//!
//! CI runs this test as the "spec files stay valid" gate: if a grammar
//! change breaks an on-disk example, it fails here with the parser's
//! caret-frame diagnostic in the assertion message.

use rlb::net::ScenarioSpec;

fn committed_specs() -> Vec<(String, String)> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("specs/ directory exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().is_some_and(|e| e == "toml") {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let text = std::fs::read_to_string(&path).expect("readable spec file");
            out.push((name, text));
        }
    }
    out.sort();
    out
}

#[test]
fn every_committed_spec_parses_and_builds() {
    let specs = committed_specs();
    assert!(
        !specs.is_empty(),
        "specs/ must hold at least one example spec"
    );
    for (name, text) in &specs {
        let spec = ScenarioSpec::parse(text)
            .unwrap_or_else(|e| panic!("specs/{name} failed to parse:\n{e}"));
        let scenario = spec
            .build()
            .unwrap_or_else(|e| panic!("specs/{name} failed to build: {e}"));
        assert!(
            !scenario.flows.is_empty(),
            "specs/{name} generated no flows"
        );
    }
}

#[test]
fn every_committed_spec_round_trips() {
    for (name, text) in committed_specs() {
        let spec = ScenarioSpec::parse(&text)
            .unwrap_or_else(|e| panic!("specs/{name} failed to parse:\n{e}"));
        let canonical = spec.to_spec_text();
        let back = ScenarioSpec::parse(&canonical)
            .unwrap_or_else(|e| panic!("specs/{name} canonical text failed to re-parse:\n{e}"));
        assert_eq!(spec, back, "specs/{name} does not round-trip");
        assert_eq!(
            canonical,
            back.to_spec_text(),
            "specs/{name} canonical text is not a fixed point"
        );
    }
}

#[test]
fn faulted_specs_apply_their_timelines() {
    // The worked example from EXPERIMENTS.md: two staggered outages with
    // recovery — four fault events must actually fire.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("specs/link_outage.toml");
    let text = std::fs::read_to_string(path).expect("specs/link_outage.toml exists");
    let spec = ScenarioSpec::parse(&text).expect("link_outage parses");
    let res = spec.build().expect("link_outage builds").run();
    assert_eq!(res.counters.faults_applied, 4, "2 downs + 2 recoveries");
    assert_eq!(res.counters.buffer_drops, 0, "lossless even under faults");
}
