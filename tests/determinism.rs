//! Determinism regression: the simulator is a pure function of its config
//! and seed. Two runs of the same scenario must agree bit-for-bit on every
//! observable — FCT list, per-port PFC pause counts, counters, event count.
//!
//! This is the property `cargo xtask lint` guards statically (no wall
//! clock, no unseeded RNG, no hash-order iteration); here we check it
//! dynamically on a scenario that exercises PFC, CNMs and recirculation.

use rlb::core::RlbConfig;
use rlb::engine::{SimDuration, SimTime};
use rlb::lb::Scheme;
use rlb::net::scenario::{FailSweepConfig, IncastScenarioConfig, MotivationConfig, Scenario};
use rlb::net::RunResult;

/// ((is_spine, switch_idx), port) — the key of `RunResult::pfc_pauses_by_port`.
type PortKey = ((bool, u32), u16);

/// A digest of everything externally observable about a run. Exact integer
/// comparisons only: picosecond timestamps and counts, no floats.
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    fcts_ps: Vec<(u64, Option<u64>)>,
    pfc_pauses_by_port: Vec<(PortKey, u64)>,
    pause_frames: u64,
    resume_frames: u64,
    cnm_generated: u64,
    recirculations: u64,
    faults_applied: u64,
    events_processed: u64,
    end_ps: u64,
}

fn digest(res: &RunResult) -> Digest {
    Digest {
        fcts_ps: res
            .records
            .iter()
            .map(|r| (r.start_ps, r.finish_ps))
            .collect(),
        pfc_pauses_by_port: res
            .pfc_pauses_by_port
            .iter()
            .map(|(k, v)| (*k, *v))
            .collect(),
        pause_frames: res.counters.pause_frames,
        resume_frames: res.counters.resume_frames,
        cnm_generated: res.counters.cnm_generated,
        recirculations: res.counters.recirculations,
        faults_applied: res.counters.faults_applied,
        events_processed: res.events_processed,
        end_ps: res.end_time.as_ps(),
    }
}

fn pfc_heavy_scenario(seed: u64) -> MotivationConfig {
    MotivationConfig {
        n_paths: 12,
        n_background: 12,
        n_burst_senders: 2,
        n_burst_senders_dst: 2,
        flows_per_burst: 40,
        bursts: 3,
        affected_paths: 4,
        congested_flow_bytes: 20_000_000,
        background_load: 0.25,
        horizon: SimTime::from_ms(2),
        seed,
    }
}

/// Same seed ⇒ byte-identical run, through the full RLB pipeline (PFC
/// storms, CNM relaying, reroutes and recirculation all active).
#[test]
fn identical_seeds_produce_identical_runs() {
    let mk = || Scenario::motivation(&pfc_heavy_scenario(42), Scheme::Drill, Some(RlbConfig::default()));
    let a = digest(&mk().run());
    let b = digest(&mk().run());
    assert!(a.pause_frames > 0, "scenario must exercise PFC");
    assert!(
        !a.pfc_pauses_by_port.is_empty(),
        "per-port pause ledger must be populated"
    );
    assert_eq!(a, b, "same config + seed must reproduce bit-for-bit");
}

/// Same property through RLB wrapping a *stateful flowlet* scheme: LetFlow
/// keeps a per-flow table (now a `FlowTable`) and draws from its RNG only
/// on flowlet boundaries, and the RLB override table rides on top — so this
/// covers the dense flow-state tables and the generation-stamped snapshot
/// cache on a path where flowlet timeouts, reroutes and per-flow overrides
/// all churn the state that the cache stamps guard.
#[test]
fn identical_seeds_identical_runs_rlb_letflow() {
    let mk = || Scenario::motivation(&pfc_heavy_scenario(7), Scheme::LetFlow, Some(RlbConfig::default()));
    let a = digest(&mk().run());
    let b = digest(&mk().run());
    assert!(a.pause_frames > 0, "scenario must exercise PFC");
    assert!(
        a.recirculations > 0 || a.cnm_generated > 0,
        "RLB machinery must be active"
    );
    assert_eq!(a, b, "RLB+LetFlow must reproduce bit-for-bit");
}

/// The per-port ledger and the aggregate counter are two views of the same
/// events and must always agree.
#[test]
fn per_port_pauses_sum_to_aggregate_counter() {
    let res = Scenario::motivation(&pfc_heavy_scenario(5), Scheme::Drill, Some(RlbConfig::default())).run();
    let sum: u64 = res.pfc_pauses_by_port.values().sum();
    assert_eq!(sum, res.counters.pause_frames);
}

/// Different seeds must actually change the run — guards against the seed
/// being silently ignored somewhere in the pipeline.
#[test]
fn different_seeds_diverge() {
    let run = |seed| {
        digest(
            &Scenario::incast(
                &IncastScenarioConfig {
                    degree: 12,
                    requests: 2,
                    total_response_bytes: 1_000_000,
                    seed,
                    ..IncastScenarioConfig::default()
                },
                Scheme::Drill,
                Some(RlbConfig::default()),
            )
            .run(),
        )
    };
    assert_ne!(run(1), run(2), "seed must influence the workload");
}

/// Fault injection rides the same event wheel as everything else, so a
/// faulted run — staggered link outages with recovery, mid-run — must
/// reproduce bit-for-bit too, and the faults must verifiably fire.
#[test]
fn faulted_runs_reproduce_bit_for_bit() {
    let mk = || {
        let fc = FailSweepConfig {
            n_failures: 3,
            load: 0.4,
            horizon: SimTime::from_us(400),
            fail_at: SimTime::from_us(50),
            fail_stagger: SimDuration::from_us(30),
            fail_duration: SimDuration::from_us(150),
            seed: 13,
            ..FailSweepConfig::default()
        };
        Scenario::fail_sweep(&fc, Scheme::LetFlow, Some(RlbConfig::default()))
    };
    let a = digest(&mk().run());
    let b = digest(&mk().run());
    assert_eq!(a.faults_applied, 6, "3 downs + 3 recoveries must fire");
    assert_eq!(a, b, "faulted run must reproduce bit-for-bit");
}
