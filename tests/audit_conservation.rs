//! Property-based exercise of the runtime invariant auditor (the `audit`
//! cargo feature): random incast and burst workloads run with a tight
//! audit interval, so the packet-conservation, PFC-pairing and buffer
//! occupancy checks fire thousands of times per case. Any leak panics
//! inside the simulator with a full ledger report; the properties here
//! only need the runs to finish.
//!
//! Build with `cargo test --features audit` (CI does; a default build
//! compiles this file to nothing).
#![cfg(feature = "audit")]

use proptest::prelude::*;
use rlb::core::RlbConfig;
use rlb::engine::{SimDuration, SimTime};
use rlb::lb::Scheme;
use rlb::net::scenario::{
    FailSweepConfig, IncastScenarioConfig, MotivationConfig, Scenario,
};

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Ecmp),
        Just(Scheme::Presto),
        Just(Scheme::LetFlow),
        Just(Scheme::Hermes),
        Just(Scheme::Drill),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10, // full simulations with a 256-event audit cadence
        .. ProptestConfig::default()
    })]

    /// Random incast fan-ins conserve packets under every scheme: the
    /// auditor cross-checks edge counters against switch buffers and the
    /// event queue every 256 events and again at drain.
    #[test]
    fn incast_conserves_packets(
        scheme in any_scheme(),
        use_rlb in any::<bool>(),
        seed in 0u64..10_000,
        degree in 4u32..20,
        requests in 1u32..4,
        response_kb in 50u64..2_000,
    ) {
        let mut sc = Scenario::incast(
            &IncastScenarioConfig {
                degree,
                requests,
                total_response_bytes: response_kb * 1024,
                request_interval: SimDuration::from_ms(1),
                seed,
                ..IncastScenarioConfig::default()
            },
            scheme,
            use_rlb.then(RlbConfig::default),
        );
        sc.cfg.audit_every_events = 256;
        let res = sc.run();
        prop_assert!(res.events_processed > 0);
    }

    /// The PFC-storm motivation scenario (pauses, CNMs, reroutes and
    /// recirculation all active) passes the same audit, including the
    /// pause/resume pairing ledger at drain.
    #[test]
    fn pfc_storm_conserves_packets(
        seed in 0u64..10_000,
        bursts in 1u32..4,
        flows_per_burst in 10u32..60,
        affected in 2u32..8,
    ) {
        let mut sc = Scenario::motivation(
            &MotivationConfig {
                n_paths: 12,
                n_background: 8,
                flows_per_burst,
                bursts,
                affected_paths: affected,
                congested_flow_bytes: 10_000_000,
                background_load: 0.2,
                horizon: SimTime::from_ms(2),
                seed,
                ..MotivationConfig::default()
            },
            Scheme::Drill,
            Some(RlbConfig::default()),
        );
        sc.cfg.audit_every_events = 256;
        let res = sc.run();
        prop_assert!(res.counters.pause_frames > 0, "storm must trigger PFC");
    }

    /// Fault injection must not leak packets: downed links freeze their
    /// queues instead of dropping, so conservation holds through every
    /// outage and recovery. Random failure counts, seeds and schemes, with
    /// the auditor cross-checking every 256 events.
    #[test]
    fn faulted_runs_conserve_packets(
        scheme in any_scheme(),
        use_rlb in any::<bool>(),
        seed in 0u64..10_000,
        n_failures in 1u32..5,
    ) {
        let mut sc = Scenario::fail_sweep(
            &FailSweepConfig {
                n_failures,
                load: 0.4,
                horizon: SimTime::from_us(400),
                fail_at: SimTime::from_us(50),
                fail_stagger: SimDuration::from_us(30),
                fail_duration: SimDuration::from_us(150),
                seed,
                ..FailSweepConfig::default()
            },
            scheme,
            use_rlb.then(RlbConfig::default),
        );
        sc.cfg.audit_every_events = 256;
        let res = sc.run();
        prop_assert_eq!(
            res.counters.faults_applied,
            u64::from(2 * n_failures),
            "every outage and recovery must fire"
        );
        prop_assert_eq!(res.counters.buffer_drops, 0, "lossless under faults");
    }
}
