//! End-to-end invariants across the whole stack: engine + transport +
//! switches + load balancing + RLB, exercised through real simulations.

use rlb::core::RlbConfig;
use rlb::engine::SimTime;
use rlb::lb::Scheme;
use rlb::net::scenario::{steady_state, SteadyStateConfig};
use rlb::net::{SimConfig, Simulation, TopoConfig};
use rlb::workloads::FlowSpec;

fn small_cfg(scheme: Scheme, rlb: Option<RlbConfig>) -> SimConfig {
    SimConfig {
        topo: TopoConfig {
            n_leaves: 3,
            n_spines: 3,
            hosts_per_leaf: 4,
            ..TopoConfig::default()
        },
        scheme,
        rlb,
        hard_stop: SimTime::from_ms(100),
        ..SimConfig::default()
    }
}

/// With PFC enabled the fabric must be lossless: zero buffer drops, every
/// flow completes, and every byte is accounted for.
#[test]
fn pfc_fabric_is_lossless_under_incast_pressure() {
    for scheme in [Scheme::Presto, Scheme::LetFlow, Scheme::Hermes, Scheme::Drill] {
        let victim = 4u32;
        let flows: Vec<FlowSpec> = [0u32, 1, 2, 3, 8, 9, 10, 11]
            .iter()
            .map(|&s| FlowSpec::new(SimTime::ZERO, s, victim, 400_000))
            .collect();
        let res = Simulation::new(small_cfg(scheme, None), flows).run();
        assert_eq!(
            res.counters.buffer_drops, 0,
            "{scheme:?}: PFC must prevent drops"
        );
        assert!(
            res.records.iter().all(|r| r.completed()),
            "{scheme:?}: all flows must complete"
        );
        assert!(res.counters.pause_frames > 0, "{scheme:?}: incast must pause");
        // PAUSE/RESUME pairing: every pause eventually resumed (or at most
        // the in-flight tail at simulation end).
        assert!(
            res.counters.resume_frames + 16 >= res.counters.pause_frames,
            "{scheme:?}: resumes {} vs pauses {}",
            res.counters.resume_frames,
            res.counters.pause_frames
        );
    }
}

/// The RLB-enhanced fabric preserves losslessness and completion, and its
/// recirculations never exceed the per-packet budget times packet count.
#[test]
fn rlb_fabric_preserves_losslessness() {
    let victim = 4u32;
    let flows: Vec<FlowSpec> = [0u32, 1, 2, 3, 8, 9, 10, 11]
        .iter()
        .map(|&s| FlowSpec::new(SimTime::ZERO, s, victim, 400_000))
        .collect();
    let rlb = RlbConfig::default();
    let max_recirc = rlb.max_recirculations as u64;
    let res = Simulation::new(small_cfg(Scheme::Drill, Some(rlb)), flows).run();
    assert_eq!(res.counters.buffer_drops, 0);
    assert!(res.records.iter().all(|r| r.completed()));
    let total_sent: u64 = res.records.iter().map(|r| r.packets_sent).sum();
    assert!(
        res.counters.recirculations <= total_sent * max_recirc,
        "recirculation budget violated: {} recircs for {} packets",
        res.counters.recirculations,
        total_sent
    );
}

/// Go-back-N correctness end to end: even when the fabric reorders
/// heavily (DRILL per-packet spraying under congestion), every flow's
/// bytes are delivered and acknowledged exactly once, in order.
#[test]
fn go_back_n_delivers_under_heavy_reordering() {
    let sc = steady_state(
        &SteadyStateConfig {
            topo: TopoConfig {
                n_leaves: 2,
                n_spines: 4,
                hosts_per_leaf: 4,
                ..TopoConfig::default()
            },
            load: 0.7,
            horizon: SimTime::from_ms(3),
            seed: 5,
            ..SteadyStateConfig::default()
        },
        Scheme::Drill,
        None,
    );
    let res = sc.run();
    let s = res.summary();
    assert_eq!(s.flows_completed, s.flows_total, "all flows complete");
    assert!(s.total_ooo_packets > 0, "the scenario must actually reorder");
    // Retransmissions happened (go-back-N rewinds) yet everything landed.
    assert!(s.total_naks > 0, "NAKs must flow under reordering");
    for r in &res.records {
        assert!(
            r.packets_sent >= r.total_packets as u64,
            "flow {} sent fewer packets than its size requires",
            r.flow_id
        );
    }
}

/// Same seed ⇒ bit-identical run, different seed ⇒ different run.
#[test]
fn determinism_and_seed_sensitivity() {
    let run = |seed: u64| {
        let sc = steady_state(
            &SteadyStateConfig {
                horizon: SimTime::from_us(800),
                load: 0.5,
                seed,
                ..SteadyStateConfig::default()
            },
            Scheme::LetFlow,
            Some(RlbConfig::default()),
        );
        let res = sc.run();
        (
            res.events_processed,
            res.counters.pause_frames,
            res.records.iter().map(|r| r.finish_ps).collect::<Vec<_>>(),
        )
    };
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert_eq!(a, b, "same seed must replay identically");
    assert_ne!(a.2, c.2, "different seeds must differ");
}

/// IRN mode: selective repeat survives a lossy fabric with far fewer
/// retransmissions than go-back-N, and everything still completes.
#[test]
fn irn_outperforms_gbn_on_lossy_fabric() {
    use rlb::net::TransportMode;
    let victim = 4u32;
    let run = |mode: TransportMode| {
        let flows: Vec<FlowSpec> = (0..4u32)
            .map(|s| FlowSpec::new(SimTime::ZERO, s, victim, 1_500_000))
            .collect();
        let mut cfg = small_cfg(Scheme::Drill, None);
        cfg.switch.pfc_enabled = false;
        cfg.switch.buffer_bytes = 300_000; // force drops
        cfg.transport.mode = mode;
        Simulation::new(cfg, flows).run()
    };
    let gbn = run(TransportMode::GoBackN);
    let irn = run(TransportMode::SelectiveRepeat);
    assert!(gbn.records.iter().all(|r| r.completed()));
    assert!(irn.records.iter().all(|r| r.completed()));
    let retx = |res: &rlb::net::RunResult| -> u64 {
        res.records.iter().map(|r| r.retransmitted_packets()).sum()
    };
    assert!(
        retx(&irn) < retx(&gbn),
        "selective repeat must retransmit less: IRN {} vs GBN {}",
        retx(&irn),
        retx(&gbn)
    );
}

/// Without PFC the same incast pressure is allowed to drop (lossy mode),
/// and go-back-N still recovers every flow.
#[test]
fn lossy_mode_drops_but_recovers() {
    let victim = 4u32;
    let flows: Vec<FlowSpec> = (0..4u32)
        .map(|s| FlowSpec::new(SimTime::ZERO, s, victim, 2_000_000))
        .collect();
    let mut cfg = small_cfg(Scheme::Drill, None);
    cfg.switch.pfc_enabled = false;
    cfg.switch.buffer_bytes = 300_000; // tiny buffer to force drops
    let res = Simulation::new(cfg, flows).run();
    assert!(res.counters.pause_frames == 0, "no PFC in lossy mode");
    assert!(res.records.iter().all(|r| r.completed()), "GBN must recover");
}

/// ECN marking reaches receivers and produces CNPs that slow senders:
/// a 2:1 incast must not leave rates at line rate.
#[test]
fn dcqcn_reacts_to_congestion() {
    let flows = vec![
        FlowSpec::new(SimTime::ZERO, 0, 4, 3_000_000),
        FlowSpec::new(SimTime::ZERO, 1, 4, 3_000_000),
    ];
    let res = Simulation::new(small_cfg(Scheme::Ecmp, None), flows).run();
    assert!(res.counters.ecn_marks > 0, "persistent 2:1 overload must mark");
    assert!(res.records.iter().all(|r| r.completed()));
    // Perfect fair sharing would finish both 3MB flows over a 40G link in
    // ~1.25ms; require completion in the right ballpark (not line-rate 0.6ms,
    // not pathological).
    let worst = res.records.iter().map(|r| r.fct_ps().unwrap()).max().unwrap();
    let worst_ms = worst as f64 / 1e9;
    assert!(worst_ms > 1.0, "two 3MB flows through one 40G link can't beat 1.2ms: {worst_ms}");
    assert!(worst_ms < 20.0, "DCQCN shouldn't strand the incast: {worst_ms}");
}
