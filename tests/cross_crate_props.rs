//! Property-based integration tests spanning crates: arbitrary small
//! workloads through the full simulator must uphold the global invariants
//! regardless of scheme, RLB, seeds or flow mixes.

use proptest::prelude::*;
use rlb::core::RlbConfig;
use rlb::engine::SimTime;
use rlb::lb::Scheme;
use rlb::net::{SimConfig, Simulation, TopoConfig};
use rlb::workloads::FlowSpec;

fn any_scheme() -> impl Strategy<Value = Scheme> {
    prop_oneof![
        Just(Scheme::Ecmp),
        Just(Scheme::Presto),
        Just(Scheme::LetFlow),
        Just(Scheme::Hermes),
        Just(Scheme::Drill),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case is a full simulation; keep the budget sane
        .. ProptestConfig::default()
    })]

    /// Any batch of small flows completes on any scheme, with or without
    /// RLB, without buffer drops (PFC on), and conservation holds:
    /// packets_sent >= total_packets for every flow.
    #[test]
    fn every_flow_completes_and_conserves(
        scheme in any_scheme(),
        use_rlb in any::<bool>(),
        seed in 0u64..1000,
        flow_specs in proptest::collection::vec(
            (0u32..12, 0u32..12, 1u64..200_000, 0u64..500_000),
            1..12
        ),
    ) {
        let cfg = SimConfig {
            topo: TopoConfig {
                n_leaves: 3,
                n_spines: 2,
                hosts_per_leaf: 4,
                ..TopoConfig::default()
            },
            scheme,
            rlb: use_rlb.then(RlbConfig::default),
            seed,
            hard_stop: SimTime::from_ms(200),
            ..SimConfig::default()
        };
        let flows: Vec<FlowSpec> = flow_specs
            .into_iter()
            .filter(|(s, d, _, _)| s != d)
            .map(|(s, d, size, start_ps)| {
                FlowSpec::new(SimTime(start_ps), s, d, size)
            })
            .collect();
        prop_assume!(!flows.is_empty());
        let n = flows.len();
        let res = Simulation::new(cfg, flows).run();
        prop_assert_eq!(res.records.len(), n);
        prop_assert_eq!(res.counters.buffer_drops, 0, "lossless violated");
        for r in &res.records {
            prop_assert!(r.completed(), "flow {} stuck", r.flow_id);
            prop_assert!(r.packets_sent >= r.total_packets as u64);
            prop_assert!(r.fct_ps().unwrap() > 0);
        }
    }

    /// Determinism as a property: any (scheme, seed, flows) combination
    /// replays identically.
    #[test]
    fn replay_is_bit_identical(
        scheme in any_scheme(),
        seed in 0u64..1000,
        sizes in proptest::collection::vec(1u64..100_000, 1..6),
    ) {
        let build = || {
            let cfg = SimConfig {
                topo: TopoConfig {
                    n_leaves: 2,
                    n_spines: 2,
                    hosts_per_leaf: 4,
                    ..TopoConfig::default()
                },
                scheme,
                rlb: Some(RlbConfig::default()),
                seed,
                hard_stop: SimTime::from_ms(100),
                ..SimConfig::default()
            };
            let flows: Vec<FlowSpec> = sizes
                .iter()
                .enumerate()
                .map(|(i, &sz)| {
                    FlowSpec::new(SimTime(i as u64 * 1_000_000), (i as u32) % 4, 4 + (i as u32) % 4, sz)
                })
                .collect();
            Simulation::new(cfg, flows).run()
        };
        let a = build();
        let b = build();
        prop_assert_eq!(a.events_processed, b.events_processed);
        let fa: Vec<_> = a.records.iter().map(|r| (r.finish_ps, r.packets_sent)).collect();
        let fb: Vec<_> = b.records.iter().map(|r| (r.finish_ps, r.packets_sent)).collect();
        prop_assert_eq!(fa, fb);
    }
}
